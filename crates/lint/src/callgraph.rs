//! Pass 1 of the flow-aware analyzer: a workspace-wide call graph.
//!
//! Nodes are the brace-matched `fn` items the [`crate::SourceFile`]
//! `fn_spans` pass already discovers (test-only functions excluded);
//! edges are call expressions
//! found lexically inside each body. Resolution is deliberately
//! conservative in the over-approximating direction — a call resolves to
//! *every* workspace function it could plausibly name — because the
//! downstream rules (`hot-alloc-transitive`, `lock-order`) treat edges as
//! "may call": a spurious edge costs a justified pragma, a missing edge
//! hides a real bug.
//!
//! Resolution rules:
//! - `name(…)` free calls resolve to every fn named `name`.
//! - `recv.name(…)` method calls resolve among fns named `name` whose
//!   first parameter is `self`: a `self.name(…)` receiver prefers the
//!   caller's own impl type; otherwise the name must belong to a single
//!   impl type workspace-wide — a method name defined on several types is
//!   lexically ambiguous (`.get()`, `.insert()`, …) and resolves to
//!   nothing rather than to the cross-product of every type's method.
//! - `Qual::name(…)` resolves to fns inside `impl Qual` blocks when any
//!   exist. With none, a lowercase `qual` is a module path segment and
//!   falls back to every fn named `name`; an uppercase `Qual` names a
//!   type whose fn we cannot see (a derive or std/trait impl) and
//!   resolves to nothing — `Stats::default()` must not resolve to every
//!   `fn default` in the workspace.
//! - `Self::name(…)` maps the qualifier to the calling fn's own impl type.
//! - Macro invocations (`name!(…)`) and definitions (`fn name`) never
//!   count as call sites, and raw-identifier names (`r#try`) compare under
//!   their stripped form.

use std::collections::HashMap;

use crate::tokens::TokenKind;
use crate::{LintContext, SourceFile};

/// Keywords that look like `name(`-shaped call heads but never are. The
/// check runs on the *raw* token text, so a genuine `r#match(…)` call to a
/// function named `match` still counts.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "break", "continue", "else", "in", "as",
    "move", "await", "let", "ref", "mut", "box", "yield",
];

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name, raw-ident-normalized.
    pub callee: String,
    /// True for `recv.name(…)` method-call syntax.
    pub method: bool,
    /// True when a method call's receiver is literally `self`.
    pub self_receiver: bool,
    /// The path segment directly before `::name(…)`, when present
    /// (raw-ident-normalized; `Self` is kept literal and resolved against
    /// the caller's impl type).
    pub qualifier: Option<String>,
    /// Index of the callee token in the owning file's `code` stream.
    pub code_idx: usize,
    /// 1-based source line of the callee token.
    pub line: u32,
    /// 1-based source column of the callee token.
    pub col: u32,
}

/// One function definition — a node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`LintContext::files`].
    pub file: usize,
    /// Index into that file's `fn_spans`.
    pub span: usize,
    /// Function name, raw-ident-normalized.
    pub name: String,
    /// True when the first parameter is `self` — the only functions a
    /// method-call site may resolve to.
    pub has_self: bool,
    /// Enclosing `impl` block's type name, when there is one.
    pub owner: Option<String>,
    /// Call sites lexically inside this body (innermost-fn attribution:
    /// a nested fn's calls belong to the nested fn, not this one).
    pub calls: Vec<CallSite>,
}

/// The workspace call graph. Build once per [`LintContext`] via
/// [`LintContext::callgraph`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every non-test function in the workspace.
    pub nodes: Vec<FnNode>,
    by_name: HashMap<String, Vec<usize>>,
    by_position: HashMap<(usize, usize), usize>,
}

impl CallGraph {
    /// Build the graph over every loaded file.
    pub fn build(ctx: &LintContext) -> Self {
        let mut graph = CallGraph::default();
        for (file_idx, file) in ctx.files.iter().enumerate() {
            let impls = find_impl_blocks(file);
            for (span_idx, span) in file.fn_spans.iter().enumerate() {
                if file.in_test(span.sig_start) {
                    continue;
                }
                let owner = impls
                    .iter()
                    .filter(|b| span.sig_start > b.open && span.body_end < b.close)
                    .min_by_key(|b| b.close - b.open)
                    .map(|b| b.type_name.clone());
                let node_idx = graph.nodes.len();
                graph.nodes.push(FnNode {
                    file: file_idx,
                    span: span_idx,
                    name: span.name.clone(),
                    has_self: first_param_is_self(file, span_idx),
                    owner,
                    calls: Vec::new(),
                });
                graph.by_name.entry(span.name.clone()).or_default().push(node_idx);
                graph.by_position.insert((file_idx, span_idx), node_idx);
            }
        }
        for (file_idx, file) in ctx.files.iter().enumerate() {
            collect_call_sites(&mut graph, file_idx, file);
        }
        graph
    }

    /// The node for the `span_idx`-th fn span of file `file_idx`, if that
    /// function is in the graph (test-only fns are not).
    pub fn node_at(&self, file_idx: usize, span_idx: usize) -> Option<usize> {
        self.by_position.get(&(file_idx, span_idx)).copied()
    }

    /// Every node a call site may resolve to, per the module-level rules.
    pub fn resolve(&self, caller: &FnNode, site: &CallSite) -> Vec<usize> {
        let Some(candidates) = self.by_name.get(&site.callee) else { return Vec::new() };
        let candidates: Vec<usize> = if site.method {
            candidates.iter().copied().filter(|&n| self.nodes[n].has_self).collect()
        } else {
            candidates.clone()
        };
        if let Some(qualifier) = site.qualifier.as_deref() {
            let wanted =
                if qualifier == "Self" { caller.owner.as_deref() } else { Some(qualifier) };
            let Some(wanted) = wanted else { return candidates };
            let owned: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&n| self.nodes[n].owner.as_deref() == Some(wanted))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
            // A type-like qualifier (including a resolved `Self`) with no
            // visible impl fn means the real body is a derive or std/trait
            // impl we cannot see.
            if qualifier == "Self" || qualifier.starts_with(|c: char| c.is_ascii_uppercase()) {
                return Vec::new();
            }
            return candidates;
        }
        if site.method {
            if site.self_receiver {
                if let Some(owner) = caller.owner.as_deref() {
                    let owned: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&n| self.nodes[n].owner.as_deref() == Some(owner))
                        .collect();
                    if !owned.is_empty() {
                        return owned;
                    }
                }
            }
            // Without a receiver type, a name defined on several impl
            // types is ambiguous — refuse to cross-product them.
            let mut owners: Vec<Option<&str>> =
                candidates.iter().map(|&n| self.nodes[n].owner.as_deref()).collect();
            owners.sort_unstable();
            owners.dedup();
            if owners.len() > 1 {
                return Vec::new();
            }
        }
        candidates
    }
}

/// One `impl … { … }` block: its self-type name and body brace indices.
struct ImplBlock {
    type_name: String,
    open: usize,
    close: usize,
}

/// Scan a file for `impl` blocks and extract each one's self-type name
/// (the last path segment before any generic arguments — `Y` in
/// `impl<T> X<T> for m::Y<T> { … }`).
fn find_impl_blocks(file: &SourceFile) -> Vec<ImplBlock> {
    let code = &file.code;
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if code.get(j).is_some_and(|t| t.is_punct("<")) {
            j = skip_angles(code, j);
        }
        // Walk the header up to its body `{`, remembering where the
        // self-type segment starts (after `for` when present).
        let mut seg_start = j;
        let mut angle_depth = 0usize;
        let open = loop {
            match code.get(j) {
                Some(t) if t.is_punct("<") => angle_depth += 1,
                Some(t) if t.is_punct(">") && angle_depth > 0 => {
                    // `->` in a bound like `Fn() -> T` is two tokens; the
                    // `>` of an arrow closes nothing.
                    if !code.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct("-")) {
                        angle_depth -= 1;
                    }
                }
                Some(t) if t.is_ident("for") && angle_depth == 0 => seg_start = j + 1,
                Some(t) if t.is_punct("{") && angle_depth == 0 => break Some(j),
                Some(t) if t.is_punct(";") && angle_depth == 0 => break None,
                Some(_) => {}
                None => break None,
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        // Last identifier of the self-type path before its generics open.
        let mut type_name = None;
        let mut depth = 0usize;
        for tok in &code[seg_start..open] {
            if tok.is_punct("<") {
                depth += 1;
            } else if tok.is_punct(">") && depth > 0 {
                depth -= 1;
            } else if depth == 0 && tok.kind == TokenKind::Ident && !tok.is_ident("dyn") {
                type_name = Some(tok.ident_name().to_string());
            }
        }
        match (type_name, crate::match_brace(code, open)) {
            (Some(type_name), Some(close)) => {
                blocks.push(ImplBlock { type_name, open, close });
                i = open + 1;
            }
            _ => i = open + 1,
        }
    }
    blocks
}

/// Index just past a balanced `<…>` run starting at `open` (which must be
/// `<`). `->` arrows inside bounds do not close angles.
fn skip_angles(code: &[crate::tokens::Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(tok) = code.get(j) {
        if tok.is_punct("<") {
            depth += 1;
        } else if tok.is_punct(">") && !code.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct("-"))
        {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// True when the fn's first parameter is `self` (incl. `&self`,
/// `&'a mut self`, `mut self`, `self: Arc<Self>`).
fn first_param_is_self(file: &SourceFile, span_idx: usize) -> bool {
    let span = &file.fn_spans[span_idx];
    let code = &file.code;
    let mut j = span.sig_start + 2;
    if code.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(code, j);
    }
    if !code.get(j).is_some_and(|t| t.is_punct("(")) {
        return false;
    }
    // Scan the first parameter only: up to the first `,` or `)` at the
    // parameter list's own depth.
    let mut depth = 0usize;
    for tok in &code[j..=span.body_end.min(code.len() - 1)] {
        if tok.is_punct("(") || tok.is_punct("[") {
            depth += 1;
        } else if tok.is_punct(")") || tok.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if depth == 1 && tok.is_punct(",") {
            return false;
        } else if depth == 1 && tok.ident_name() == "self" && tok.kind == TokenKind::Ident {
            return true;
        }
    }
    false
}

/// Find every call expression in `file` and attribute it to its innermost
/// enclosing non-test function's node.
fn collect_call_sites(graph: &mut CallGraph, file_idx: usize, file: &SourceFile) {
    let code = &file.code;
    for k in 0..code.len() {
        let tok = &code[k];
        if tok.kind != TokenKind::Ident
            || NON_CALL_KEYWORDS.contains(&tok.text.as_str())
            || tok.text == "fn"
        {
            continue;
        }
        if !code.get(k + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let prev = k.checked_sub(1).map(|p| &code[p]);
        if prev.is_some_and(|t| t.is_ident("fn")) {
            continue;
        }
        if file.in_test(k) {
            continue;
        }
        let Some(span_idx) = file.enclosing_fn_idx(k) else { continue };
        let Some(node_idx) = graph.node_at(file_idx, span_idx) else { continue };
        let method = prev.is_some_and(|t| t.is_punct("."));
        let self_receiver = method
            && k.checked_sub(2)
                .and_then(|r| code.get(r))
                .is_some_and(|t| t.kind == TokenKind::Ident && t.ident_name() == "self");
        let qualifier = if prev.is_some_and(|t| t.is_punct("::")) {
            k.checked_sub(2).map(|q| &code[q]).filter(|t| t.kind == TokenKind::Ident).map(|t| {
                if t.text == "Self" {
                    t.text.clone()
                } else {
                    t.ident_name().to_string()
                }
            })
        } else {
            None
        };
        graph.nodes[node_idx].calls.push(CallSite {
            callee: tok.ident_name().to_string(),
            method,
            self_receiver,
            qualifier,
            code_idx: k,
            line: tok.line,
            col: tok.col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn graph_of(files: &[(&str, &str)]) -> (LintContext, Vec<String>) {
        let files: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::new((*p).into(), (*s).into())).collect();
        let ctx = LintContext::from_parts(PathBuf::from("."), files, None);
        let names: Vec<String> = ctx.callgraph().nodes.iter().map(|n| n.name.clone()).collect();
        (ctx, names)
    }

    fn edges(ctx: &LintContext) -> Vec<(String, String)> {
        let g = ctx.callgraph();
        let mut out = Vec::new();
        for node in &g.nodes {
            for site in &node.calls {
                for callee in g.resolve(node, site) {
                    out.push((node.name.clone(), g.nodes[callee].name.clone()));
                }
            }
        }
        out
    }

    #[test]
    fn free_calls_resolve_by_name_and_skip_macros_and_keywords() {
        let (ctx, names) = graph_of(&[(
            "crates/core/src/x.rs",
            "fn a() { b(); vec![1]; if x() { () } }\nfn b() { () }\nfn x() -> bool { true }\n",
        )]);
        assert_eq!(names, vec!["a", "b", "x"]);
        let e = edges(&ctx);
        assert!(e.contains(&("a".into(), "b".into())), "{e:?}");
        assert!(e.contains(&("a".into(), "x".into())), "{e:?}");
        // `vec!` is a macro, `if` is a keyword: neither is an edge source.
        assert_eq!(e.len(), 2, "{e:?}");
    }

    #[test]
    fn method_calls_resolve_only_to_self_taking_fns() {
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "struct S;\n\
             impl S { fn go(&self) { () } }\n\
             fn go() { () }\n\
             fn driver(s: &S) { s.go(); }\n",
        )]);
        let g = ctx.callgraph();
        let driver = g.nodes.iter().find(|n| n.name == "driver").unwrap();
        let site = &driver.calls[0];
        let resolved = g.resolve(driver, site);
        assert_eq!(resolved.len(), 1, "{resolved:?}");
        assert!(g.nodes[resolved[0]].has_self);
        assert_eq!(g.nodes[resolved[0]].owner.as_deref(), Some("S"));
    }

    #[test]
    fn qualified_calls_prefer_impl_owner_and_self_maps_to_caller_owner() {
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "struct A;\nstruct B;\n\
             impl A { fn make() { () }\n    fn run(&self) { Self::make(); } }\n\
             impl B { fn make() { () } }\n\
             fn driver() { A::make(); }\n",
        )]);
        let g = ctx.callgraph();
        let driver = g.nodes.iter().find(|n| n.name == "driver").unwrap();
        let resolved = g.resolve(driver, &driver.calls[0]);
        assert_eq!(resolved.len(), 1, "{resolved:?}");
        assert_eq!(g.nodes[resolved[0]].owner.as_deref(), Some("A"));
        let run = g.nodes.iter().find(|n| n.name == "run").unwrap();
        let resolved = g.resolve(run, &run.calls[0]);
        assert_eq!(resolved.len(), 1, "{resolved:?}");
        assert_eq!(g.nodes[resolved[0]].owner.as_deref(), Some("A"));
    }

    #[test]
    fn type_qualifier_without_visible_impl_resolves_to_nothing() {
        // `Stats::default()` must not resolve to every `fn default` in the
        // workspace when Stats's impl is a derive we cannot see.
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "struct Other;\n\
             impl Other { fn default() -> Self { Other } }\n\
             fn driver() { let s = Stats::default(); }\n",
        )]);
        assert!(edges(&ctx).is_empty(), "{:?}", edges(&ctx));
    }

    #[test]
    fn ambiguous_multi_owner_method_resolves_to_nothing() {
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "struct A;\nstruct B;\n\
             impl A { fn len(&self) -> usize { 0 } }\n\
             impl B { fn len(&self) -> usize { 1 } }\n\
             fn driver(xs: &A) { xs.len(); }\n",
        )]);
        assert!(edges(&ctx).is_empty(), "{:?}", edges(&ctx));
    }

    #[test]
    fn self_receiver_prefers_the_callers_own_impl() {
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "struct A;\nstruct B;\n\
             impl A { fn step(&self) { () }\n    fn run(&self) { self.step(); } }\n\
             impl B { fn step(&self) { () } }\n",
        )]);
        let g = ctx.callgraph();
        let run = g.nodes.iter().find(|n| n.name == "run").unwrap();
        let resolved = g.resolve(run, &run.calls[0]);
        assert_eq!(resolved.len(), 1, "{resolved:?}");
        assert_eq!(g.nodes[resolved[0]].owner.as_deref(), Some("A"));
    }

    #[test]
    fn module_qualifier_falls_back_to_all_candidates() {
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "mod util { pub fn helper() { () } }\nfn driver() { util::helper(); }\n",
        )]);
        let e = edges(&ctx);
        assert_eq!(e, vec![("driver".to_string(), "helper".to_string())]);
    }

    #[test]
    fn impl_for_blocks_attribute_to_the_self_type() {
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "struct Wrap<T>(T);\n\
             impl<T: Clone> std::fmt::Debug for Wrap<T> {\n\
                 fn fmt(&self) { () }\n\
             }\n",
        )]);
        let g = ctx.callgraph();
        let fmt = g.nodes.iter().find(|n| n.name == "fmt").unwrap();
        assert_eq!(fmt.owner.as_deref(), Some("Wrap"));
        assert!(fmt.has_self);
    }

    #[test]
    fn test_fns_and_test_call_sites_stay_out() {
        let (ctx, names) = graph_of(&[(
            "crates/core/src/x.rs",
            "fn live() { () }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { live(); }\n}\n",
        )]);
        assert_eq!(names, vec!["live"]);
        assert!(edges(&ctx).is_empty());
    }

    #[test]
    fn raw_ident_calls_match_raw_ident_definitions() {
        let (ctx, names) = graph_of(&[(
            "crates/core/src/x.rs",
            "fn r#try() { () }\nfn driver() { r#try(); }\nfn m() { match x { _ => () } }\n",
        )]);
        assert_eq!(names, vec!["try", "driver", "m"]);
        let e = edges(&ctx);
        assert_eq!(e, vec![("driver".to_string(), "try".to_string())]);
    }

    #[test]
    fn nested_fn_calls_attribute_to_the_inner_fn() {
        let (ctx, _) = graph_of(&[(
            "crates/core/src/x.rs",
            "fn leaf() { () }\nfn outer() { fn inner() { leaf(); } inner(); }\n",
        )]);
        let e = edges(&ctx);
        assert!(e.contains(&("inner".into(), "leaf".into())), "{e:?}");
        assert!(e.contains(&("outer".into(), "inner".into())), "{e:?}");
        assert!(!e.contains(&("outer".into(), "leaf".into())), "{e:?}");
    }
}
