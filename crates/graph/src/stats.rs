//! Summary statistics of a temporal graph, mirroring Table I of the paper
//! (`|V|`, `|E|`, `|T|`, maximum degree `d`).

use crate::graph::TemporalGraph;
use crate::interval::TimeInterval;
use std::fmt;

/// Summary statistics of a temporal graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of temporal edges `|E|`.
    pub num_edges: usize,
    /// Number of distinct timestamps `|T|`.
    pub num_timestamps: usize,
    /// Maximum in- or out-degree `d`.
    pub max_degree: usize,
    /// Smallest and largest timestamps, if the graph has edges.
    pub time_range: Option<TimeInterval>,
}

impl GraphStats {
    /// Computes the statistics of `graph`.
    pub fn compute(graph: &TemporalGraph) -> Self {
        Self {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            num_timestamps: graph.num_timestamps(),
            max_degree: graph.max_degree(),
            time_range: graph.time_range(),
        }
    }

    /// Average number of temporal edges per vertex (`m / n`), 0 for an empty
    /// vertex set.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_vertices as f64
        }
    }

    /// A single TSV row `n\tm\t|T|\td`, used by the experiment harness when
    /// printing its Table I analogue.
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}",
            self.num_vertices, self.num_edges, self.num_timestamps, self.max_degree
        )
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |T|={} d={}",
            self.num_vertices, self.num_edges, self.num_timestamps, self.max_degree
        )?;
        if let Some(r) = self.time_range {
            write!(f, " time={r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;

    #[test]
    fn stats_of_running_example() {
        let s = GraphStats::compute(&figure1_graph());
        assert_eq!(s.num_vertices, 8);
        assert_eq!(s.num_edges, 14);
        assert_eq!(s.num_timestamps, 6);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.time_range, Some(TimeInterval::new(2, 7)));
        assert!((s.average_degree() - 14.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.tsv_row(), "8\t14\t6\t4");
        assert!(s.to_string().contains("|E|=14"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&TemporalGraph::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.average_degree(), 0.0);
        assert!(s.time_range.is_none());
    }
}
