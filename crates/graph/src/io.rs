//! Plain-text edge-list I/O and Graphviz DOT export.
//!
//! The accepted textual format is the one used by SNAP/KONECT temporal graph
//! dumps: one edge per line, whitespace-separated `src dst timestamp`
//! fields, with `#` or `%` starting a comment — either a whole comment line
//! or a trailing comment after the three fields. CRLF line endings are
//! accepted. A data line with more than three fields is rejected with its
//! line number (real dumps that carry extra columns, e.g. KONECT's
//! `src dst weight time`, would otherwise be silently misparsed).

use crate::error::GraphError;
use crate::graph::TemporalGraph;
use crate::types::{TemporalEdge, Timestamp, VertexId};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a temporal edge list from a string.
///
/// ```
/// let text = "# toy graph\n0 1 5\n1 2 7\n";
/// let g = tspg_graph::io::parse_edge_list(text).unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn parse_edge_list(text: &str) -> Result<TemporalGraph, GraphError> {
    read_edge_list(text.as_bytes())
}

/// Reads a temporal edge list from any [`Read`] implementation.
pub fn read_edge_list<R: Read>(reader: R) -> Result<TemporalGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let data = strip_line_comment(&line);
        if data.is_empty() {
            continue;
        }
        edges.push(parse_edge_line(data, lineno)?);
    }
    Ok(TemporalGraph::from_edges(0, edges))
}

/// Reads a temporal edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<TemporalGraph, GraphError> {
    read_edge_list(File::open(path)?)
}

/// Writes the graph as a textual edge list (one `src dst time` per line).
pub fn write_edge_list<W: Write>(graph: &TemporalGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# temporal edge list: src dst time")?;
    writeln!(w, "# vertices={} edges={}", graph.num_vertices(), graph.num_edges())?;
    for e in graph.edges() {
        writeln!(w, "{} {} {}", e.src, e.dst, e.time)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph as a textual edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(
    graph: &TemporalGraph,
    path: P,
) -> Result<(), GraphError> {
    write_edge_list(graph, File::create(path)?)
}

/// Renders the graph in Graphviz DOT syntax, labelling each edge with its
/// timestamp. `names` optionally maps vertex ids to display names (useful for
/// the transit case study, Fig. 13).
pub fn to_dot(graph: &TemporalGraph, names: Option<&dyn Fn(VertexId) -> String>) -> String {
    let mut out = String::from("digraph tspg {\n  rankdir=LR;\n");
    let label = |v: VertexId| match names {
        Some(f) => f(v),
        None => format!("v{v}"),
    };
    for v in graph.non_isolated_vertices() {
        out.push_str(&format!("  {} [label=\"{}\"];\n", v, escape(&label(v))));
    }
    for e in graph.edges() {
        out.push_str(&format!("  {} -> {} [label=\"{}\"];\n", e.src, e.dst, e.time));
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Reduces one line of a whitespace-separated text format (edge lists,
/// query files) to its data portion: trims whitespace — including the `\r`
/// that `BufRead::lines` leaves behind on CRLF input — and drops everything
/// from the first `#` or `%` on, covering both whole comment lines and
/// trailing annotations. Returns the empty string for blank/comment lines.
pub fn strip_line_comment(line: &str) -> &str {
    let trimmed = line.trim();
    match trimmed.find(['#', '%']) {
        Some(pos) => trimmed[..pos].trim_end(),
        None => trimmed,
    }
}

fn parse_edge_line(line: &str, lineno: usize) -> Result<TemporalEdge, GraphError> {
    let mut fields = line.split_whitespace();
    let src = parse_field::<u64>(fields.next(), "source vertex", lineno)?;
    let dst = parse_field::<u64>(fields.next(), "destination vertex", lineno)?;
    let time = parse_field::<Timestamp>(fields.next(), "timestamp", lineno)?;
    if let Some(extra) = fields.next() {
        return Err(GraphError::Parse {
            line: lineno,
            message: format!(
                "too many fields (unexpected {extra:?}; expected `src dst timestamp`)"
            ),
        });
    }
    if src > u64::from(VertexId::MAX) || dst > u64::from(VertexId::MAX) {
        return Err(GraphError::VertexOutOfRange {
            vertex: src.max(dst),
            num_vertices: VertexId::MAX as usize,
        });
    }
    Ok(TemporalEdge::new(src as VertexId, dst as VertexId, time))
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    what: &str,
    lineno: usize,
) -> Result<T, GraphError> {
    let raw = field
        .ok_or_else(|| GraphError::Parse { line: lineno, message: format!("missing {what}") })?;
    raw.parse::<T>().map_err(|_| GraphError::Parse {
        line: lineno,
        message: format!("invalid {what}: {raw:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;

    #[test]
    fn parse_simple_list() {
        let g = parse_edge_list("0 1 5\n1 2 6\n\n# comment\n% other comment\n2 0 7\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0, 7));
    }

    #[test]
    fn parse_tabs() {
        let g = parse_edge_list("0\t1\t5\n1\t2\t6\n").unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn extra_fields_are_rejected_with_the_line_number() {
        // A fourth column (e.g. KONECT's `src dst weight time` layout) would
        // previously be silently dropped, misreading the weight as the
        // timestamp; now the line is rejected so the caller notices.
        let err = parse_edge_list("0 1 5\n0\t1\t5 1.0\n").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("too many fields"), "{message}");
                assert!(message.contains("1.0"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        let g = parse_edge_list("# dump\r\n0 1 5\r\n1 2 6\r\n\r\n2 0 7\r\n").unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(1, 2, 6));
    }

    #[test]
    fn trailing_inline_comments_are_stripped() {
        let text = "0 1 5 # first contact\n1 2 6\t% weight column removed\n2 0 7#tight\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0, 7));
        // A line that is only a comment after trimming still parses as blank.
        let g = parse_edge_list("   # indented comment\n0 1 5\n").unwrap();
        assert_eq!(g.num_edges(), 1);
        // An inline comment cannot hide missing fields.
        let err = parse_edge_list("0 1 # timestamp lost to the comment\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let err = parse_edge_list("0 1 5\n0 x 6\n").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("destination"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse_edge_list("0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn negative_timestamps_are_allowed() {
        let g = parse_edge_list("0 1 -5\n").unwrap();
        assert_eq!(g.edges()[0].time, -5);
    }

    #[test]
    fn roundtrip_through_text() {
        let g = figure1_graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed.edges(), g.edges());
    }

    #[test]
    fn roundtrip_through_file() {
        let g = figure1_graph();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tspg_io_test_{}.txt", std::process::id()));
        write_edge_list_file(&g, &path).unwrap();
        let parsed = read_edge_list_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed.edges(), g.edges());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_edge_list_file("/definitely/not/a/file.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn dot_output_contains_vertices_and_edges() {
        let g = figure1_graph();
        let dot = to_dot(&g, None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("0 -> 2 [label=\"2\"]"));
        let named = to_dot(&g, Some(&|v| format!("V{v}")));
        assert!(named.contains("label=\"V0\""));
    }
}
