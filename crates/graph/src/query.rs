//! The query quadruple shared across the workspace.

use crate::interval::TimeInterval;
use crate::types::{Timestamp, VertexId};
use std::fmt;

/// One temporal simple path graph query `(s, t, [τ_b, τ_e])`.
///
/// This is the single query type of the workspace: `tspg-datasets` generates
/// workloads of them and `tspg-core`'s batch engine answers them (re-exported
/// there as `QuerySpec`).
///
/// # Canonical form
///
/// Queries are normalized at construction so that every layer that compares,
/// hashes or groups queries — the batch planner, the result cache and the
/// one-shot pipeline — agrees on one canonical representation per answer:
///
/// * **Degenerate** queries (`s == t`) have an empty tspG regardless of the
///   window, so [`Query::new`] collapses their window to the single
///   timestamp `τ_b`. Two degenerate queries on the same vertex therefore
///   compare equal whenever their windows start at the same instant, and
///   hash to the same cache key.
/// * **Inverted** windows (`begin > end`) describe no timestamps at all;
///   they are unrepresentable (`TimeInterval::new` rejects them), and
///   [`Query::try_new`] offers the non-panicking constructor for raw input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t`.
    pub target: VertexId,
    /// Query interval `[τ_b, τ_e]`.
    pub window: TimeInterval,
}

impl Query {
    /// Creates a query in canonical form (see the type-level docs).
    pub fn new(source: VertexId, target: VertexId, window: TimeInterval) -> Self {
        let window = if source == target { TimeInterval::point(window.begin()) } else { window };
        Self { source, target, window }
    }

    /// Creates a query from raw endpoints, returning `None` for inverted
    /// (`begin > end`, i.e. empty) windows. The non-panicking face of
    /// [`Query::new`] for untrusted input such as parsed query files.
    pub fn try_new(
        source: VertexId,
        target: VertexId,
        begin: Timestamp,
        end: Timestamp,
    ) -> Option<Self> {
        TimeInterval::try_new(begin, end).map(|w| Self::new(source, target, w))
    }

    /// Returns `true` if the query is degenerate (`s == t`): a temporal
    /// simple path with at least one edge cannot start and end at the same
    /// vertex, so the tspG is empty no matter the window or graph.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.source == self.target
    }

    /// The canonical form of the query.
    ///
    /// [`Query::new`] already canonicalizes, so this is the identity for
    /// queries built through constructors; it exists for values assembled
    /// from raw fields (the fields are public) so that the planner and the
    /// cache never key on a non-canonical representation.
    pub fn canonical(&self) -> Self {
        Self::new(self.source, self.target, self.window)
    }

    /// Returns `true` if this query *covers* `other`: same endpoints and a
    /// window that contains `other`'s window. Every temporal simple path
    /// satisfying `other` then lies inside this query's tspG, so `other`
    /// can be answered from this query's result (window sharing).
    pub fn covers(&self, other: &Query) -> bool {
        self.source == other.source
            && self.target == other.target
            && self.window.contains_interval(&other.window)
    }

    /// The span θ of the query interval, saturating at `i64::MAX` (see
    /// [`TimeInterval::span`]).
    pub fn theta(&self) -> i64 {
        self.window.span()
    }
}

impl From<(VertexId, VertexId, TimeInterval)> for Query {
    fn from((source, target, window): (VertexId, VertexId, TimeInterval)) -> Self {
        Self::new(source, target, window)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} within {}", self.source, self.target, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_span() {
        let q = Query::new(3, 9, TimeInterval::new(2, 7));
        assert_eq!(q.theta(), 6);
        let from_tuple: Query = (3, 9, TimeInterval::new(2, 7)).into();
        assert_eq!(q, from_tuple);
        assert_eq!(format!("{q}"), "3 -> 9 within [2, 7]");
    }

    #[test]
    fn degenerate_queries_are_canonicalized_at_construction() {
        let a = Query::new(4, 4, TimeInterval::new(2, 7));
        let b = Query::new(4, 4, TimeInterval::new(2, 9));
        assert!(a.is_degenerate());
        assert_eq!(a, b, "same vertex + same window start must agree");
        assert_eq!(a.window, TimeInterval::point(2));
        assert!(!Query::new(4, 5, TimeInterval::new(2, 7)).is_degenerate());
    }

    #[test]
    fn theta_saturates_on_extreme_windows() {
        let q = Query::new(0, 1, TimeInterval::new(i64::MIN, i64::MAX));
        assert_eq!(q.theta(), i64::MAX);
        assert_eq!(Query::new(0, 1, TimeInterval::new(i64::MIN, -2)).theta(), i64::MAX);
    }

    #[test]
    fn try_new_rejects_inverted_windows() {
        assert!(Query::try_new(0, 1, 5, 2).is_none());
        let q = Query::try_new(0, 1, 2, 5).unwrap();
        assert_eq!(q, Query::new(0, 1, TimeInterval::new(2, 5)));
    }

    #[test]
    fn canonical_repairs_raw_field_assembly() {
        // Bypass the constructor deliberately.
        let raw = Query { source: 3, target: 3, window: TimeInterval::new(1, 9) };
        let canon = raw.canonical();
        assert_eq!(canon.window, TimeInterval::point(1));
        assert_eq!(canon, canon.canonical(), "canonical must be idempotent");
        let ok = Query::new(1, 2, TimeInterval::new(3, 4));
        assert_eq!(ok, ok.canonical());
    }

    #[test]
    fn covers_requires_same_endpoints_and_containment() {
        let wide = Query::new(1, 2, TimeInterval::new(0, 10));
        let narrow = Query::new(1, 2, TimeInterval::new(3, 7));
        assert!(wide.covers(&narrow));
        assert!(wide.covers(&wide), "covers is reflexive");
        assert!(!narrow.covers(&wide));
        assert!(!wide.covers(&Query::new(2, 1, TimeInterval::new(3, 7))));
        assert!(!wide.covers(&Query::new(1, 3, TimeInterval::new(3, 7))));
        let shifted = Query::new(1, 2, TimeInterval::new(5, 12));
        assert!(!wide.covers(&shifted), "overlap is not containment");
    }
}
