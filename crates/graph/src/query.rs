//! The query quadruple shared across the workspace.

use crate::interval::TimeInterval;
use crate::types::VertexId;
use std::fmt;

/// One temporal simple path graph query `(s, t, [τ_b, τ_e])`.
///
/// This is the single query type of the workspace: `tspg-datasets` generates
/// workloads of them and `tspg-core`'s batch engine answers them (re-exported
/// there as `QuerySpec`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t`.
    pub target: VertexId,
    /// Query interval `[τ_b, τ_e]`.
    pub window: TimeInterval,
}

impl Query {
    /// Creates a query.
    pub fn new(source: VertexId, target: VertexId, window: TimeInterval) -> Self {
        Self { source, target, window }
    }

    /// The span θ of the query interval.
    pub fn theta(&self) -> i64 {
        self.window.span()
    }
}

impl From<(VertexId, VertexId, TimeInterval)> for Query {
    fn from((source, target, window): (VertexId, VertexId, TimeInterval)) -> Self {
        Self::new(source, target, window)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} within {}", self.source, self.target, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_span() {
        let q = Query::new(3, 9, TimeInterval::new(2, 7));
        assert_eq!(q.theta(), 6);
        let from_tuple: Query = (3, 9, TimeInterval::new(2, 7)).into();
        assert_eq!(q, from_tuple);
        assert_eq!(format!("{q}"), "3 -> 9 within [2, 7]");
    }
}
