//! Incremental construction of [`TemporalGraph`]s.

use crate::graph::TemporalGraph;
use crate::types::{TemporalEdge, Timestamp, VertexId};

/// Incremental builder for [`TemporalGraph`].
///
/// Edges may be added in any order; [`TemporalGraphBuilder::build`] sorts
/// them into the canonical time-major order and removes exact duplicates.
///
/// ```
/// use tspg_graph::TemporalGraphBuilder;
///
/// let mut b = TemporalGraphBuilder::with_vertices(3);
/// b.add_edge(0, 1, 10);
/// b.add_edge(1, 2, 11);
/// b.add_edge(1, 2, 11); // duplicate, dropped at build time
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TemporalGraphBuilder {
    min_vertices: usize,
    edges: Vec<TemporalEdge>,
}

impl TemporalGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that will produce a graph with at least
    /// `num_vertices` vertices, even if some are isolated.
    pub fn with_vertices(num_vertices: usize) -> Self {
        Self { min_vertices: num_vertices, edges: Vec::new() }
    }

    /// Reserves capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Ensures the built graph will have at least `num_vertices` vertices.
    pub fn ensure_vertices(&mut self, num_vertices: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(num_vertices);
        self
    }

    /// Adds the temporal edge `e(src, dst, time)`.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, time: Timestamp) -> &mut Self {
        self.edges.push(TemporalEdge::new(src, dst, time));
        self
    }

    /// Adds an already-constructed [`TemporalEdge`].
    pub fn add(&mut self, edge: TemporalEdge) -> &mut Self {
        self.edges.push(edge);
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend<I>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = TemporalEdge>,
    {
        self.edges.extend(edges);
        self
    }

    /// Number of edges currently staged (before de-duplication).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Consumes the builder and produces the immutable graph.
    pub fn build(self) -> TemporalGraph {
        TemporalGraph::from_edges(self.min_vertices, self.edges)
    }
}

impl FromIterator<TemporalEdge> for TemporalGraph {
    fn from_iter<I: IntoIterator<Item = TemporalEdge>>(iter: I) -> Self {
        TemporalGraph::from_edges(0, iter.into_iter().collect())
    }
}

impl FromIterator<(VertexId, VertexId, Timestamp)> for TemporalGraph {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId, Timestamp)>>(iter: I) -> Self {
        TemporalGraph::from_edges(0, iter.into_iter().map(TemporalEdge::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = TemporalGraphBuilder::new();
        b.add_edge(3, 1, 7).add_edge(0, 1, 2).add(TemporalEdge::new(1, 2, 5));
        assert_eq!(b.staged_edges(), 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edges()[0], TemporalEdge::new(0, 1, 2));
    }

    #[test]
    fn with_vertices_keeps_isolated() {
        let mut b = TemporalGraphBuilder::with_vertices(10);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn ensure_vertices_is_monotone() {
        let mut b = TemporalGraphBuilder::new();
        b.ensure_vertices(5);
        b.ensure_vertices(3);
        assert_eq!(b.build().num_vertices(), 5);
    }

    #[test]
    fn extend_and_from_iter() {
        let mut b = TemporalGraphBuilder::new();
        b.extend((0..4).map(|i| TemporalEdge::new(i, i + 1, i as Timestamp)));
        assert_eq!(b.build().num_edges(), 4);

        let g: TemporalGraph = vec![(0u32, 1u32, 3i64), (1, 2, 4)].into_iter().collect();
        assert_eq!(g.num_edges(), 2);
        let g: TemporalGraph =
            vec![TemporalEdge::new(0, 1, 3), TemporalEdge::new(0, 1, 3)].into_iter().collect();
        assert_eq!(g.num_edges(), 1);
    }
}
