//! Fundamental identifier and edge types shared across the workspace.

use std::fmt;

/// Dense vertex identifier.
///
/// Vertices of a [`crate::TemporalGraph`] are numbered `0..num_vertices`.
/// `u32` comfortably covers the datasets used by the paper (the largest has
/// ~6 M vertices) while keeping adjacency entries compact.
pub type VertexId = u32;

/// Integer interaction timestamp.
///
/// The paper (Section II) follows the standard convention that timestamps are
/// integers (e.g. UNIX timestamps); `i64` covers both raw epoch seconds and
/// small synthetic domains, and leaves room for the sentinel arithmetic
/// (`τ_b − 1`, `τ_e + 1`) performed by the polarity-time computation.
pub type Timestamp = i64;

/// Identifier of an edge inside a particular [`crate::TemporalGraph`].
///
/// Edge ids are indices into the graph's canonical, timestamp-sorted edge
/// array, so iterating edges by increasing id also iterates them in
/// non-descending temporal order — exactly the scan order required by the
/// TCV computation (Algorithm 4) and by TightUBG (Algorithm 5).
pub type EdgeId = u32;

/// A directed temporal edge `e(u, v, τ)`: an interaction from `src` to `dst`
/// at integer timestamp `time`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemporalEdge {
    /// Timestamp of the interaction. Placed first so the derived `Ord`
    /// orders edges by time, then by source, then by destination — the
    /// canonical order used throughout the workspace.
    pub time: Timestamp,
    /// Source vertex (tail).
    pub src: VertexId,
    /// Destination vertex (head).
    pub dst: VertexId,
}

impl TemporalEdge {
    /// Creates a new temporal edge `e(src, dst, time)`.
    #[inline]
    pub const fn new(src: VertexId, dst: VertexId, time: Timestamp) -> Self {
        Self { time, src, dst }
    }

    /// Returns `true` if the edge is a self-loop (`src == dst`).
    ///
    /// Self-loops can never participate in a *simple* path of length ≥ 1
    /// between two distinct vertices, but they are accepted by the storage
    /// layer so that raw datasets round-trip unchanged.
    #[inline]
    pub const fn is_loop(&self) -> bool {
        self.src == self.dst
    }

    /// Returns the edge with its direction reversed (same timestamp).
    #[inline]
    pub const fn reversed(&self) -> Self {
        Self { time: self.time, src: self.dst, dst: self.src }
    }
}

impl fmt::Debug for TemporalEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e({}, {}, {})", self.src, self.dst, self.time)
    }
}

impl fmt::Display for TemporalEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} @ {}", self.src, self.dst, self.time)
    }
}

impl From<(VertexId, VertexId, Timestamp)> for TemporalEdge {
    fn from((src, dst, time): (VertexId, VertexId, Timestamp)) -> Self {
        Self::new(src, dst, time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ordering_is_time_major() {
        let a = TemporalEdge::new(5, 9, 1);
        let b = TemporalEdge::new(0, 1, 2);
        let c = TemporalEdge::new(0, 2, 2);
        let mut v = vec![c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn edge_helpers() {
        let e = TemporalEdge::new(3, 3, 10);
        assert!(e.is_loop());
        let e = TemporalEdge::new(1, 2, 10);
        assert!(!e.is_loop());
        assert_eq!(e.reversed(), TemporalEdge::new(2, 1, 10));
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn edge_from_tuple_and_display() {
        let e: TemporalEdge = (7, 8, 42).into();
        assert_eq!(e.src, 7);
        assert_eq!(e.dst, 8);
        assert_eq!(e.time, 42);
        assert_eq!(format!("{e:?}"), "e(7, 8, 42)");
        assert_eq!(format!("{e}"), "7 -> 8 @ 42");
    }
}
