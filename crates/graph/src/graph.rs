//! Immutable CSR-style storage of a directed temporal graph.
//!
//! The layout is chosen to support the exact access patterns of the paper's
//! algorithms:
//!
//! * a global edge array sorted by non-descending timestamp (the scan order
//!   of Algorithms 4 and 5 and of the EEV edge loop);
//! * per-vertex out- and in-adjacency lists sorted by timestamp, so that the
//!   polarity-time BFS, the bidirectional DFS and the `T_in`/`T_out`
//!   timestamp lookups are cheap binary searches / ordered scans.

use crate::interval::TimeInterval;
use crate::types::{EdgeId, TemporalEdge, Timestamp, VertexId};

/// One adjacency entry: the neighbouring vertex, the timestamp of the
/// connecting edge, and the edge's id in the owning graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjEntry {
    /// Neighbour vertex (head for out-adjacency, tail for in-adjacency).
    pub neighbor: VertexId,
    /// Timestamp of the connecting edge.
    pub time: Timestamp,
    /// Id of the connecting edge in the owning [`TemporalGraph`].
    pub edge: EdgeId,
}

/// Version number of a [`TemporalGraph`] under streaming mutation.
///
/// A freshly built graph is at epoch 0; every
/// [`TemporalGraph::extend_with_edges`] call advances the epoch by one,
/// whether or not the batch contributed a new edge (callers key caches by
/// epoch, and a conservative bump is always sound where a missed one is
/// not). Epochs are totally ordered and never reused, so any state derived
/// from the graph — cached results, resident arrival profiles, published
/// tspGs — can be scoped to the epoch it was computed at and becomes
/// unreachable the moment the graph moves on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphEpoch(u64);

impl GraphEpoch {
    /// The epoch of every freshly constructed graph.
    pub const ZERO: GraphEpoch = GraphEpoch(0);

    /// The epoch as a plain integer (for `key=value` surfaces and cache
    /// keys).
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The next epoch.
    #[must_use]
    #[inline]
    pub fn next(self) -> GraphEpoch {
        GraphEpoch(self.0 + 1)
    }
}

impl std::fmt::Display for GraphEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable directed temporal graph.
///
/// Vertices are the dense range `0..num_vertices`; a vertex may be isolated.
/// Edges are stored sorted by `(time, src, dst)` and exact duplicates are
/// removed at construction time (the paper treats `E` as a set).
///
/// "Immutable" describes the query surface, not the storage: the streaming
/// ingestion path ([`TemporalGraph::extend_with_edges`]) appends a
/// timestamped edge batch and re-normalizes in place, leaving the graph
/// indistinguishable from a from-scratch [`TemporalGraph::from_edges`]
/// build over the union edge set — and advances the [`GraphEpoch`] so
/// derived state can tell the two versions apart.
#[derive(Clone, Debug, Default)]
pub struct TemporalGraph {
    num_vertices: usize,
    edges: Vec<TemporalEdge>,
    out_offsets: Vec<usize>,
    out_entries: Vec<AdjEntry>,
    in_offsets: Vec<usize>,
    in_entries: Vec<AdjEntry>,
    epoch: GraphEpoch,
}

impl TemporalGraph {
    /// Builds a graph from an explicit vertex count and edge list.
    ///
    /// Edges are sorted and de-duplicated; `num_vertices` is grown if any
    /// edge references a vertex `≥ num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: Vec<TemporalEdge>) -> Self {
        let mut graph = Self { edges, ..Self::default() };
        graph.normalize_and_index(num_vertices);
        graph
    }

    /// Shared normalization of every construction path: sorts and
    /// de-duplicates `self.edges`, grows the vertex range to cover them,
    /// and rebuilds both CSR indexes.
    fn normalize_and_index(&mut self, num_vertices: usize) {
        self.edges.sort_unstable();
        self.edges.dedup();
        let required =
            self.edges.iter().map(|e| (e.src.max(e.dst) as usize) + 1).max().unwrap_or(0);
        self.num_vertices = num_vertices.max(required);
        self.rebuild_indexes();
    }

    /// Rebuilds the two CSR indexes from `self.edges` (which must already be
    /// sorted and de-duplicated), reusing the index vectors' capacity.
    fn rebuild_indexes(&mut self) {
        build_adjacency_into(
            self.num_vertices,
            &self.edges,
            true,
            &mut self.out_offsets,
            &mut self.out_entries,
        );
        build_adjacency_into(
            self.num_vertices,
            &self.edges,
            false,
            &mut self.in_offsets,
            &mut self.in_entries,
        );
    }

    /// An empty graph with `num_vertices` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Self::from_edges(num_vertices, Vec::new())
    }

    /// Number of vertices `n = |V|` (including isolated vertices).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of temporal edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices as VertexId).map(|v| v as VertexId)
    }

    /// All edges, sorted by `(time, src, dst)`; the position of an edge in
    /// this slice is its [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> TemporalEdge {
        self.edges[id as usize]
    }

    /// Looks up the id of the exact edge `e(src, dst, time)` if present.
    pub fn find_edge(&self, src: VertexId, dst: VertexId, time: Timestamp) -> Option<EdgeId> {
        let probe = TemporalEdge::new(src, dst, time);
        self.edges.binary_search(&probe).ok().map(|i| i as EdgeId)
    }

    /// Returns `true` if the exact edge `e(src, dst, time)` is present.
    #[inline]
    pub fn has_edge(&self, src: VertexId, dst: VertexId, time: Timestamp) -> bool {
        self.find_edge(src, dst, time).is_some()
    }

    /// Out-neighbours `N_out(u)` as `(neighbour, time, edge)` entries sorted
    /// by non-descending timestamp.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[AdjEntry] {
        let u = u as usize;
        &self.out_entries[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// In-neighbours `N_in(u)` sorted by non-descending timestamp.
    #[inline]
    pub fn in_neighbors(&self, u: VertexId) -> &[AdjEntry] {
        let u = u as usize;
        &self.in_entries[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// Out-neighbours of `u` whose edge timestamp lies inside `window`.
    pub fn out_neighbors_in(&self, u: VertexId, window: TimeInterval) -> &[AdjEntry] {
        slice_by_time(self.out_neighbors(u), window)
    }

    /// In-neighbours of `u` whose edge timestamp lies inside `window`.
    pub fn in_neighbors_in(&self, u: VertexId, window: TimeInterval) -> &[AdjEntry] {
        slice_by_time(self.in_neighbors(u), window)
    }

    /// Out-degree of `u` (number of temporal out-edges).
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `u` (number of temporal in-edges).
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.in_neighbors(u).len()
    }

    /// The largest in- or out-degree over all vertices, the `d` of the
    /// paper's complexity analyses.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices as VertexId)
            .map(|u| self.out_degree(u).max(self.in_degree(u)))
            .max()
            .unwrap_or(0)
    }

    /// Distinct timestamps of out-edges of `u` (`T_out(u)`), ascending.
    pub fn out_times(&self, u: VertexId) -> Vec<Timestamp> {
        distinct_times(self.out_neighbors(u))
    }

    /// Distinct timestamps of in-edges of `u` (`T_in(u)`), ascending.
    pub fn in_times(&self, u: VertexId) -> Vec<Timestamp> {
        distinct_times(self.in_neighbors(u))
    }

    /// All distinct timestamps appearing on any edge (`T`), ascending.
    pub fn timestamps(&self) -> Vec<Timestamp> {
        let mut ts: Vec<Timestamp> = self.edges.iter().map(|e| e.time).collect();
        ts.dedup(); // edges are already sorted by time
        ts
    }

    /// Number of distinct timestamps `|T|`.
    pub fn num_timestamps(&self) -> usize {
        self.timestamps().len()
    }

    /// Smallest and largest timestamps as an interval, if the graph has
    /// edges.
    pub fn time_range(&self) -> Option<TimeInterval> {
        let first = self.edges.first()?.time;
        let last = self.edges.last()?.time;
        Some(TimeInterval::new(first, last))
    }

    /// Vertices that are the endpoint of at least one edge, ascending.
    pub fn non_isolated_vertices(&self) -> Vec<VertexId> {
        let mut present = vec![false; self.num_vertices];
        for e in &self.edges {
            present[e.src as usize] = true;
            present[e.dst as usize] = true;
        }
        present.iter().enumerate().filter_map(|(v, &p)| p.then_some(v as VertexId)).collect()
    }

    /// The projected graph `G[τ_b, τ_e]`: same vertex id space, keeping only
    /// edges whose timestamp lies inside `window` (the `dtTSG` reduction of
    /// Section III-A).
    pub fn project(&self, window: TimeInterval) -> TemporalGraph {
        self.edge_induced(|_, e| window.contains(e.time))
    }

    /// Edge-induced subgraph keeping exactly the edges for which `keep`
    /// returns `true`. The vertex id space is preserved.
    pub fn edge_induced<F>(&self, mut keep: F) -> TemporalGraph
    where
        F: FnMut(EdgeId, &TemporalEdge) -> bool,
    {
        let edges: Vec<TemporalEdge> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(i, e)| keep(*i as EdgeId, e))
            .map(|(_, e)| *e)
            .collect();
        TemporalGraph::from_edges(self.num_vertices, edges)
    }

    /// In-place variant of [`TemporalGraph::edge_induced`]: rebuilds `self`
    /// as the edge-induced subgraph of `source`, reusing `self`'s existing
    /// heap allocations (edge array and both CSR indexes).
    ///
    /// This is the storage primitive behind the batch query engine's scratch
    /// reuse: after the first query warms the buffers up, constructing the
    /// per-query upper-bound graphs allocates nothing in steady state.
    pub fn assign_edge_induced<F>(&mut self, source: &TemporalGraph, mut keep: F)
    where
        F: FnMut(EdgeId, &TemporalEdge) -> bool,
    {
        self.num_vertices = source.num_vertices;
        self.edges.clear();
        self.edges.extend(
            source.edges.iter().enumerate().filter(|(i, e)| keep(*i as EdgeId, e)).map(|(_, e)| *e),
        );
        // `source.edges` is sorted and de-duplicated; filtering preserves both.
        self.rebuild_indexes();
    }

    /// In-place rebuild of `self` from an explicit edge list, reusing
    /// `self`'s existing heap allocations (edge array and both CSR
    /// indexes). Edges are sorted and de-duplicated, and `num_vertices` is
    /// grown if any edge references a vertex beyond it — the same
    /// normalization as [`TemporalGraph::from_edges`], without the fresh
    /// allocations.
    ///
    /// This is the storage primitive behind the engine's frontier-restricted
    /// `G_q` scan: the admitted edges are gathered per reachable vertex (so
    /// they arrive grouped by source, not globally time-sorted) and the
    /// subgraph is rebuilt from that buffer instead of filtering all `m`
    /// edges of the input graph.
    pub fn assign_from_edges(&mut self, num_vertices: usize, edges: &[TemporalEdge]) {
        self.edges.clear();
        self.edges.extend_from_slice(edges);
        self.normalize_and_index(num_vertices);
    }

    /// The graph's current [`GraphEpoch`].
    ///
    /// Freshly built graphs (any constructor, including the in-place
    /// `assign_*` rebuilds used for scratch reuse) are at epoch 0; only
    /// [`TemporalGraph::extend_with_edges`] advances it.
    #[inline]
    pub fn epoch(&self) -> GraphEpoch {
        self.epoch
    }

    /// Appends a timestamped edge batch and re-normalizes the graph in
    /// place, returning the new [`GraphEpoch`].
    ///
    /// The batch may be unsorted, may contain duplicates (of itself or of
    /// resident edges), and may reference vertices beyond the current
    /// range — the same normalization as [`TemporalGraph::from_edges`]
    /// applies, so the result is byte-identical (edge array, CSR offsets
    /// and entries, vertex count) to a from-scratch build over the union
    /// edge set. Existing [`EdgeId`]s are NOT stable across a call: ids are
    /// positions in the time-sorted edge array, and new edges may land
    /// anywhere in it.
    ///
    /// The epoch advances on *every* call, even when the batch turns out to
    /// be all duplicates: callers key caches by epoch, and a spurious bump
    /// only costs recomputation where a missed one would serve stale
    /// answers.
    pub fn extend_with_edges(&mut self, edges: &[TemporalEdge]) -> GraphEpoch {
        self.edges.extend_from_slice(edges);
        self.normalize_and_index(self.num_vertices);
        self.epoch = self.epoch.next();
        self.epoch
    }

    /// Edge-induced subgraph from a boolean mask indexed by [`EdgeId`].
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != self.num_edges()`.
    pub fn edge_induced_from_mask(&self, mask: &[bool]) -> TemporalGraph {
        assert_eq!(mask.len(), self.num_edges(), "edge mask length mismatch");
        self.edge_induced(|id, _| mask[id as usize])
    }

    /// Reverse graph: every edge `e(u, v, τ)` becomes `e(v, u, τ)`.
    pub fn reversed(&self) -> TemporalGraph {
        let edges = self.edges.iter().map(TemporalEdge::reversed).collect();
        TemporalGraph::from_edges(self.num_vertices, edges)
    }

    /// Rough number of heap bytes used by this graph (edge array plus the two
    /// CSR indexes). Used by the space-consumption experiment (Fig. 7).
    pub fn approx_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<TemporalEdge>()
            + (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<usize>()
            + (self.out_entries.len() + self.in_entries.len()) * std::mem::size_of::<AdjEntry>()
    }
}

fn build_adjacency_into(
    num_vertices: usize,
    edges: &[TemporalEdge],
    outgoing: bool,
    offsets: &mut Vec<usize>,
    entries: &mut Vec<AdjEntry>,
) {
    offsets.clear();
    offsets.resize(num_vertices + 1, 0);
    for e in edges {
        let key = if outgoing { e.src } else { e.dst } as usize;
        offsets[key + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    entries.clear();
    entries.resize(edges.len(), AdjEntry { neighbor: 0, time: 0, edge: 0 });
    // Edges are globally time-sorted, so filling in order keeps every
    // per-vertex bucket time-sorted as well. `offsets[key]` doubles as the
    // fill cursor of bucket `key`; after the pass it holds the bucket *end*,
    // which the right-shift below turns back into bucket starts.
    for (id, e) in edges.iter().enumerate() {
        let (key, neighbor) = if outgoing { (e.src, e.dst) } else { (e.dst, e.src) };
        let slot = offsets[key as usize];
        entries[slot] = AdjEntry { neighbor, time: e.time, edge: id as EdgeId };
        offsets[key as usize] += 1;
    }
    for i in (1..offsets.len()).rev() {
        offsets[i] = offsets[i - 1];
    }
    offsets[0] = 0;
}

fn slice_by_time(entries: &[AdjEntry], window: TimeInterval) -> &[AdjEntry] {
    let lo = entries.partition_point(|a| a.time < window.begin());
    let hi = entries.partition_point(|a| a.time <= window.end());
    &entries[lo..hi]
}

fn distinct_times(entries: &[AdjEntry]) -> Vec<Timestamp> {
    let mut ts: Vec<Timestamp> = entries.iter().map(|a| a.time).collect();
    ts.dedup();
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running-example graph of Fig. 1(a) in the paper.
    ///
    /// Vertex mapping: s=0, a=1, b=2, c=3, d=4, e=5, f=6, t=7.
    pub(crate) fn figure1_graph() -> TemporalGraph {
        let edges = vec![
            TemporalEdge::new(0, 1, 3), // s -> a @ 3
            TemporalEdge::new(0, 2, 2), // s -> b @ 2
            TemporalEdge::new(0, 4, 4), // s -> d @ 4
            TemporalEdge::new(1, 4, 5), // a -> d @ 5
            TemporalEdge::new(2, 3, 3), // b -> c @ 3
            TemporalEdge::new(2, 6, 5), // b -> f @ 5
            TemporalEdge::new(2, 7, 6), // b -> t @ 6
            TemporalEdge::new(3, 6, 4), // c -> f @ 4
            TemporalEdge::new(3, 7, 7), // c -> t @ 7
            TemporalEdge::new(4, 7, 2), // d -> t @ 2
            TemporalEdge::new(5, 3, 6), // e -> c @ 6
            TemporalEdge::new(6, 2, 5), // f -> b @ 5
            TemporalEdge::new(6, 5, 5), // f -> e @ 5
        ];
        TemporalGraph::from_edges(8, edges)
    }

    #[test]
    fn basic_counts() {
        let g = figure1_graph();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 13);
        assert!(!g.is_empty());
        assert_eq!(g.vertices().count(), 8);
    }

    #[test]
    fn edges_are_time_sorted_and_ids_match() {
        let g = figure1_graph();
        let edges = g.edges();
        for w in edges.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(g.edge(i as EdgeId), *e);
            assert_eq!(g.find_edge(e.src, e.dst, e.time), Some(i as EdgeId));
        }
        assert!(g.find_edge(0, 7, 99).is_none());
        assert!(g.has_edge(0, 2, 2));
        assert!(!g.has_edge(2, 0, 2));
    }

    #[test]
    fn adjacency_is_time_sorted() {
        let g = figure1_graph();
        for u in g.vertices() {
            for w in g.out_neighbors(u).windows(2) {
                assert!(w[0].time <= w[1].time);
            }
            for w in g.in_neighbors(u).windows(2) {
                assert!(w[0].time <= w[1].time);
            }
        }
        // s has out-neighbours b@2, a@3, d@4 in that temporal order.
        let outs: Vec<(VertexId, Timestamp)> =
            g.out_neighbors(0).iter().map(|a| (a.neighbor, a.time)).collect();
        assert_eq!(outs, vec![(2, 2), (1, 3), (4, 4)]);
        // t has in-neighbours d@2, b@6, c@7.
        let ins: Vec<(VertexId, Timestamp)> =
            g.in_neighbors(7).iter().map(|a| (a.neighbor, a.time)).collect();
        assert_eq!(ins, vec![(4, 2), (2, 6), (3, 7)]);
    }

    #[test]
    fn adjacency_entries_reference_correct_edges() {
        let g = figure1_graph();
        for u in g.vertices() {
            for a in g.out_neighbors(u) {
                let e = g.edge(a.edge);
                assert_eq!(e.src, u);
                assert_eq!(e.dst, a.neighbor);
                assert_eq!(e.time, a.time);
            }
            for a in g.in_neighbors(u) {
                let e = g.edge(a.edge);
                assert_eq!(e.dst, u);
                assert_eq!(e.src, a.neighbor);
                assert_eq!(e.time, a.time);
            }
        }
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = figure1_graph();
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(7), 3);
        assert_eq!(g.out_degree(7), 0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn windows_and_times() {
        let g = figure1_graph();
        let w = TimeInterval::new(2, 7);
        assert_eq!(g.out_neighbors_in(0, w).len(), 3);
        assert_eq!(g.out_neighbors_in(0, TimeInterval::new(3, 4)).len(), 2);
        assert_eq!(g.in_neighbors_in(7, TimeInterval::new(3, 6)).len(), 1);
        assert_eq!(g.out_times(2), vec![3, 5, 6]);
        assert_eq!(g.in_times(4), vec![4, 5]);
        assert_eq!(g.timestamps(), vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(g.num_timestamps(), 6);
        assert_eq!(g.time_range(), Some(TimeInterval::new(2, 7)));
    }

    #[test]
    fn projection_filters_by_time() {
        let g = figure1_graph();
        let p = g.project(TimeInterval::new(3, 5));
        assert_eq!(p.num_vertices(), g.num_vertices());
        assert!(p.edges().iter().all(|e| (3..=5).contains(&e.time)));
        assert_eq!(p.num_edges(), 8);
        // Projection over the full range is the identity on edges.
        let full = g.project(g.time_range().unwrap());
        assert_eq!(full.edges(), g.edges());
    }

    #[test]
    fn edge_induced_and_mask() {
        let g = figure1_graph();
        let sub = g.edge_induced(|_, e| e.src == 0);
        assert_eq!(sub.num_edges(), 3);
        let mut mask = vec![false; g.num_edges()];
        mask[0] = true;
        mask[3] = true;
        let sub = g.edge_induced_from_mask(&mask);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edges()[0], g.edge(0));
        assert_eq!(sub.edges()[1], g.edge(3));
    }

    #[test]
    fn assign_edge_induced_matches_the_allocating_variant() {
        let g = figure1_graph();
        let mut reused = TemporalGraph::default();
        // Reassign the same storage across several different filters; each
        // result must be indistinguishable from a freshly built subgraph.
        for (pass, src_filter) in [0u32, 2, 3, 6, 99].into_iter().enumerate() {
            reused.assign_edge_induced(&g, |_, e| e.src == src_filter);
            let fresh = g.edge_induced(|_, e| e.src == src_filter);
            assert_eq!(reused.num_vertices(), fresh.num_vertices(), "pass {pass}");
            assert_eq!(reused.edges(), fresh.edges(), "pass {pass}");
            for u in fresh.vertices() {
                assert_eq!(reused.out_neighbors(u), fresh.out_neighbors(u), "pass {pass}");
                assert_eq!(reused.in_neighbors(u), fresh.in_neighbors(u), "pass {pass}");
            }
        }
        // Growing back after an empty assignment also works.
        reused.assign_edge_induced(&g, |_, _| true);
        assert_eq!(reused.edges(), g.edges());
    }

    #[test]
    fn assign_from_edges_matches_from_edges() {
        let g = figure1_graph();
        let mut reused = TemporalGraph::default();
        // Unsorted input with duplicates, delivered grouped-by-source the
        // way the frontier-restricted scan gathers admitted edges.
        let mut edges: Vec<TemporalEdge> = Vec::new();
        for u in (0..g.num_vertices() as VertexId).rev() {
            edges.extend(
                g.out_neighbors(u).iter().map(|a| TemporalEdge::new(u, a.neighbor, a.time)),
            );
        }
        edges.push(edges[0]);
        reused.assign_from_edges(g.num_vertices(), &edges);
        assert_eq!(reused.edges(), g.edges());
        for u in g.vertices() {
            assert_eq!(reused.out_neighbors(u), g.out_neighbors(u));
            assert_eq!(reused.in_neighbors(u), g.in_neighbors(u));
        }
        // Reassigning smaller, then empty, then growing the vertex range.
        reused.assign_from_edges(2, &[TemporalEdge::new(0, 1, 5)]);
        assert_eq!(reused.num_edges(), 1);
        assert_eq!(reused.num_vertices(), 2);
        reused.assign_from_edges(3, &[]);
        assert!(reused.is_empty());
        assert_eq!(reused.num_vertices(), 3);
        reused.assign_from_edges(1, &[TemporalEdge::new(4, 2, 1)]);
        assert_eq!(reused.num_vertices(), 5, "vertex range grows to cover the edges");
    }

    #[test]
    fn extend_with_edges_matches_from_scratch_build() {
        let g = figure1_graph();
        // Start from a prefix of the figure-1 edges, then stream the rest in
        // two unsorted batches with duplicates; the result must be
        // indistinguishable from the one-shot build.
        let all: Vec<TemporalEdge> = g.edges().to_vec();
        let mut streamed = TemporalGraph::from_edges(8, all[..5].to_vec());
        assert_eq!(streamed.epoch(), GraphEpoch::ZERO);

        let mut batch1: Vec<TemporalEdge> = all[5..9].to_vec();
        batch1.reverse();
        batch1.push(all[2]); // duplicate of a resident edge
        let e1 = streamed.extend_with_edges(&batch1);
        assert_eq!(e1.value(), 1);
        assert_eq!(streamed.epoch(), e1);

        let mut batch2: Vec<TemporalEdge> = all[9..].to_vec();
        batch2.push(batch2[0]); // duplicate inside the batch
        batch2.swap(0, 1);
        let e2 = streamed.extend_with_edges(&batch2);
        assert_eq!(e2.value(), 2);

        assert_eq!(streamed.num_vertices(), g.num_vertices());
        assert_eq!(streamed.edges(), g.edges());
        for u in g.vertices() {
            assert_eq!(streamed.out_neighbors(u), g.out_neighbors(u));
            assert_eq!(streamed.in_neighbors(u), g.in_neighbors(u));
        }
    }

    #[test]
    fn extend_with_edges_bumps_epoch_even_for_duplicate_batches() {
        let mut g = figure1_graph();
        let before = g.num_edges();
        let dup = [g.edge(0)];
        let e = g.extend_with_edges(&dup);
        assert_eq!(e.value(), 1, "all-duplicate batches still advance the epoch");
        assert_eq!(g.num_edges(), before);
        // A batch that grows the vertex range is normalized like from_edges.
        let e = g.extend_with_edges(&[TemporalEdge::new(11, 3, 1)]);
        assert_eq!(e.value(), 2);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.edges()[0], TemporalEdge::new(11, 3, 1), "new earliest edge sorts first");
    }

    #[test]
    #[should_panic(expected = "edge mask length mismatch")]
    fn mask_length_mismatch_panics() {
        let g = figure1_graph();
        let _ = g.edge_induced_from_mask(&[true]);
    }

    #[test]
    fn reversed_graph_swaps_directions() {
        let g = figure1_graph();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        for e in g.edges() {
            assert!(r.has_edge(e.dst, e.src, e.time));
        }
        // Reversing twice gives back the original edge set.
        let rr = r.reversed();
        assert_eq!(rr.edges(), g.edges());
    }

    #[test]
    fn duplicates_are_removed_and_vertex_count_grows() {
        let edges = vec![
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(9, 3, 1),
        ];
        let g = TemporalGraph::from_edges(2, edges);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn parallel_edges_with_distinct_times_are_kept() {
        let edges = vec![
            TemporalEdge::new(0, 1, 5),
            TemporalEdge::new(0, 1, 6),
            TemporalEdge::new(0, 1, 7),
        ];
        let g = TemporalGraph::from_edges(2, edges);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 3);
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = TemporalGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert!(g.time_range().is_none());
        assert!(g.timestamps().is_empty());
        assert!(g.non_isolated_vertices().is_empty());
        assert_eq!(g.out_neighbors(0).len(), 0);
    }

    #[test]
    fn non_isolated_vertices_reported() {
        let g = TemporalGraph::from_edges(6, vec![TemporalEdge::new(1, 4, 2)]);
        assert_eq!(g.non_isolated_vertices(), vec![1, 4]);
    }

    #[test]
    fn approx_bytes_is_monotone_in_edges() {
        let small = TemporalGraph::from_edges(4, vec![TemporalEdge::new(0, 1, 1)]);
        let big = figure1_graph();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
