//! Shared test fixtures: the running example of the paper (Fig. 1(a)).
//!
//! The fixture is part of the public API (not gated behind `cfg(test)`) so
//! that every downstream crate — and downstream users experimenting with the
//! library — can reproduce the worked examples of the paper (Examples 1–8).

use crate::graph::TemporalGraph;
use crate::interval::TimeInterval;
use crate::types::{TemporalEdge, VertexId};

/// Vertex ids of the running example, in the paper's naming.
#[allow(missing_docs)]
pub mod fig1 {
    use super::VertexId;
    pub const S: VertexId = 0;
    pub const A: VertexId = 1;
    pub const B: VertexId = 2;
    pub const C: VertexId = 3;
    pub const D: VertexId = 4;
    pub const E: VertexId = 5;
    pub const F: VertexId = 6;
    pub const T: VertexId = 7;
}

/// The directed temporal graph of Fig. 1(a).
///
/// Vertex mapping: `s=0, a=1, b=2, c=3, d=4, e=5, f=6, t=7`.
///
/// Within the query interval `[2, 7]` there are exactly two temporal simple
/// paths from `s` to `t` (Fig. 1(b)): `⟨e(s,b,2), e(b,c,3), e(c,t,7)⟩` and
/// `⟨e(s,b,2), e(b,t,6)⟩`, so the tspG (Fig. 1(c)) has 4 vertices and 4
/// edges.
pub fn figure1_graph() -> TemporalGraph {
    use fig1::*;
    let edges = vec![
        TemporalEdge::new(S, A, 3),
        TemporalEdge::new(S, B, 2),
        TemporalEdge::new(S, D, 4),
        TemporalEdge::new(A, D, 5),
        TemporalEdge::new(B, C, 3),
        TemporalEdge::new(B, D, 3),
        TemporalEdge::new(B, F, 5),
        TemporalEdge::new(B, T, 6),
        TemporalEdge::new(C, F, 4),
        TemporalEdge::new(C, T, 7),
        TemporalEdge::new(D, T, 2),
        TemporalEdge::new(E, C, 6),
        TemporalEdge::new(F, B, 5),
        TemporalEdge::new(F, E, 5),
    ];
    TemporalGraph::from_edges(8, edges)
}

/// The query used throughout the paper's running example:
/// source `s`, target `t`, interval `[2, 7]`.
pub fn figure1_query() -> (VertexId, VertexId, TimeInterval) {
    (fig1::S, fig1::T, TimeInterval::new(2, 7))
}

/// Human-readable name of a vertex of the running example.
pub fn figure1_name(v: VertexId) -> &'static str {
    match v {
        fig1::S => "s",
        fig1::A => "a",
        fig1::B => "b",
        fig1::C => "c",
        fig1::D => "d",
        fig1::E => "e",
        fig1::F => "f",
        fig1::T => "t",
        _ => "?",
    }
}

/// The expected temporal simple path graph `tspG[2,7](s, t)` of Fig. 1(c):
/// edges `e(s,b,2)`, `e(b,c,3)`, `e(b,t,6)`, `e(c,t,7)`.
pub fn figure1_expected_tspg_edges() -> Vec<TemporalEdge> {
    use fig1::*;
    vec![
        TemporalEdge::new(S, B, 2),
        TemporalEdge::new(B, C, 3),
        TemporalEdge::new(B, T, 6),
        TemporalEdge::new(C, T, 7),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_matches_paper_sizes() {
        let g = figure1_graph();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 14);
        let (s, t, w) = figure1_query();
        assert_eq!((s, t), (0, 7));
        assert_eq!(w.span(), 6);
        assert_eq!(figure1_expected_tspg_edges().len(), 4);
        assert_eq!(figure1_name(fig1::B), "b");
        assert_eq!(figure1_name(99), "?");
    }
}
