//! # tspg-graph
//!
//! Directed **temporal graph** substrate used by every other crate in the
//! workspace.
//!
//! A temporal graph `G = (V, E)` consists of vertices identified by dense
//! integer ids and directed temporal edges `e(u, v, τ)` where `τ` is an
//! integer interaction timestamp (the paper, like most temporal-graph work,
//! assumes UNIX-style integer timestamps).
//!
//! The crate provides:
//!
//! * [`TemporalEdge`], [`VertexId`], [`Timestamp`], [`EdgeId`] — basic types.
//! * [`TimeInterval`] — inclusive query interval `[τ_b, τ_e]` with its span
//!   `θ = τ_e − τ_b + 1`.
//! * [`TemporalGraph`] — immutable CSR-style storage with in/out adjacency
//!   sorted by timestamp, plus a global edge list sorted by timestamp (the
//!   access patterns required by the VUG algorithms), plus a streaming
//!   append path ([`TemporalGraph::extend_with_edges`]) versioned by
//!   [`GraphEpoch`].
//! * [`TemporalGraphBuilder`] — incremental construction with de-duplication.
//! * [`EdgeSet`] / subgraph helpers — canonical edge-set representation used
//!   for upper-bound graphs and for the final temporal simple path graph.
//! * [`io`] — plain-text edge-list reading/writing and Graphviz DOT export.
//! * [`stats`] — summary statistics mirroring Table I of the paper.
//!
//! # Quick example
//!
//! ```
//! use tspg_graph::{TemporalGraphBuilder, TimeInterval};
//!
//! let mut b = TemporalGraphBuilder::new();
//! b.add_edge(0, 1, 2);
//! b.add_edge(1, 2, 3);
//! b.add_edge(2, 3, 7);
//! let g = b.build();
//!
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 3);
//! let window = TimeInterval::new(2, 7);
//! assert_eq!(window.span(), 6);
//! assert_eq!(g.project(window).num_edges(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod edgeset;
pub mod error;
pub mod fixtures;
pub mod graph;
pub mod interval;
pub mod io;
pub mod query;
pub mod stats;
pub mod types;

pub use builder::TemporalGraphBuilder;
pub use edgeset::EdgeSet;
pub use error::GraphError;
pub use graph::{AdjEntry, GraphEpoch, TemporalGraph};
pub use interval::TimeInterval;
pub use query::Query;
pub use stats::GraphStats;
pub use types::{EdgeId, TemporalEdge, Timestamp, VertexId};
