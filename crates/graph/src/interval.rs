//! Inclusive query time intervals `[τ_b, τ_e]`.

use crate::types::Timestamp;
use std::fmt;

/// An inclusive time interval `[begin, end]` (`τ_b ≤ τ_e`).
///
/// The *span* of the interval is `θ = τ_e − τ_b + 1`, which bounds the length
/// of any strict temporal path inside the interval (Remark 1 in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeInterval {
    begin: Timestamp,
    end: Timestamp,
}

impl TimeInterval {
    /// Creates the interval `[begin, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `begin > end`.
    #[inline]
    pub fn new(begin: Timestamp, end: Timestamp) -> Self {
        assert!(begin <= end, "invalid interval: begin={begin} > end={end}");
        Self { begin, end }
    }

    /// Creates the interval `[begin, end]`, returning `None` if `begin > end`.
    #[inline]
    pub fn try_new(begin: Timestamp, end: Timestamp) -> Option<Self> {
        (begin <= end).then_some(Self { begin, end })
    }

    /// Interval covering a single timestamp.
    #[inline]
    pub fn point(t: Timestamp) -> Self {
        Self { begin: t, end: t }
    }

    /// Left endpoint `τ_b`.
    #[inline]
    pub const fn begin(&self) -> Timestamp {
        self.begin
    }

    /// Right endpoint `τ_e`.
    #[inline]
    pub const fn end(&self) -> Timestamp {
        self.end
    }

    /// Span `θ = τ_e − τ_b + 1`, saturating at `i64::MAX`.
    ///
    /// Saturation matters: extreme windows such as `[i64::MIN, i64::MAX]`
    /// are representable (and easy to synthesize once envelope planning
    /// merges windows), and `end − begin + 1` on them overflows — a panic
    /// in debug builds and a *negative* span in release builds, which would
    /// silently invert every span comparison built on it.
    #[inline]
    pub const fn span(&self) -> i64 {
        self.end.saturating_sub(self.begin).saturating_add(1)
    }

    /// Returns `true` if `t ∈ [τ_b, τ_e]`.
    #[inline]
    pub const fn contains(&self, t: Timestamp) -> bool {
        self.begin <= t && t <= self.end
    }

    /// Returns `true` if `other` is fully contained in `self`.
    #[inline]
    pub const fn contains_interval(&self, other: &TimeInterval) -> bool {
        self.begin <= other.begin && other.end <= self.end
    }

    /// Intersection of two intervals, if non-empty.
    #[inline]
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        TimeInterval::try_new(self.begin.max(other.begin), self.end.min(other.end))
    }

    /// Returns `true` if the two intervals share at least one timestamp.
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.begin.max(other.begin) <= self.end.min(other.end)
    }

    /// Returns `true` if the *union* of the two intervals is itself a
    /// single interval over the integer timestamp domain: they overlap or
    /// are adjacent (`[0, 5]` and `[6, 12]` cover every timestamp of
    /// `[0, 12]`). This is the mergeability test envelope planning uses.
    #[inline]
    pub fn union_is_interval(&self, other: &TimeInterval) -> bool {
        self.begin.max(other.begin) <= self.end.min(other.end).saturating_add(1)
    }

    /// The smallest interval containing both: `[min begin, max end]`.
    ///
    /// This is the *envelope* (interval hull) of the pair; when
    /// [`TimeInterval::union_is_interval`] holds it equals the exact union.
    #[inline]
    pub fn hull(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval { begin: self.begin.min(other.begin), end: self.end.max(other.end) }
    }

    /// The interval `[τ_b, upper]`; used for prefix windows such as the
    /// `[τ_b, τ_i]` windows of forward time-stream common vertices.
    #[inline]
    pub fn with_end(&self, upper: Timestamp) -> Option<TimeInterval> {
        TimeInterval::try_new(self.begin, upper.min(self.end))
    }

    /// The interval `[lower, τ_e]`; used for suffix windows such as the
    /// `[τ_j, τ_e]` windows of backward time-stream common vertices.
    #[inline]
    pub fn with_begin(&self, lower: Timestamp) -> Option<TimeInterval> {
        TimeInterval::try_new(lower.max(self.begin), self.end)
    }
}

impl fmt::Debug for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.begin, self.end)
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.begin, self.end)
    }
}

impl From<(Timestamp, Timestamp)> for TimeInterval {
    fn from((b, e): (Timestamp, Timestamp)) -> Self {
        Self::new(b, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_contains() {
        let w = TimeInterval::new(2, 7);
        assert_eq!(w.span(), 6);
        assert!(w.contains(2));
        assert!(w.contains(7));
        assert!(!w.contains(1));
        assert!(!w.contains(8));
    }

    #[test]
    fn point_interval() {
        let w = TimeInterval::point(5);
        assert_eq!(w.span(), 1);
        assert!(w.contains(5));
        assert!(!w.contains(4));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn invalid_interval_panics() {
        let _ = TimeInterval::new(8, 2);
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(TimeInterval::try_new(3, 2).is_none());
        assert!(TimeInterval::try_new(3, 3).is_some());
    }

    #[test]
    fn intersect_and_containment() {
        let a = TimeInterval::new(2, 10);
        let b = TimeInterval::new(5, 20);
        assert_eq!(a.intersect(&b), Some(TimeInterval::new(5, 10)));
        assert_eq!(b.intersect(&a), Some(TimeInterval::new(5, 10)));
        let c = TimeInterval::new(11, 12);
        assert_eq!(a.intersect(&c), None);
        assert!(a.contains_interval(&TimeInterval::new(3, 9)));
        assert!(!a.contains_interval(&b));
    }

    #[test]
    fn span_saturates_on_extreme_windows() {
        // `end − begin + 1` overflows on all three of these; the saturating
        // form must return `i64::MAX` instead of panicking or wrapping.
        assert_eq!(TimeInterval::new(i64::MIN, i64::MAX).span(), i64::MAX);
        assert_eq!(TimeInterval::new(i64::MIN, 0).span(), i64::MAX);
        assert_eq!(TimeInterval::new(0, i64::MAX).span(), i64::MAX);
        assert_eq!(TimeInterval::new(i64::MIN, i64::MIN).span(), 1);
        assert_eq!(TimeInterval::new(i64::MAX, i64::MAX).span(), 1);
    }

    #[test]
    fn overlap_adjacency_and_hull() {
        let a = TimeInterval::new(0, 5);
        let b = TimeInterval::new(3, 8);
        let c = TimeInterval::new(6, 12);
        let d = TimeInterval::new(8, 9);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "adjacent is not overlapping");
        assert!(a.union_is_interval(&b));
        assert!(a.union_is_interval(&c), "adjacent unions are contiguous");
        assert!(c.union_is_interval(&a), "contiguity is symmetric");
        assert!(!a.union_is_interval(&d), "a gap breaks the union");
        assert_eq!(a.hull(&c), TimeInterval::new(0, 12));
        assert_eq!(b.hull(&a), TimeInterval::new(0, 8));
        assert_eq!(a.hull(&a), a);
        // Saturating adjacency check at the top of the domain.
        let top = TimeInterval::new(i64::MAX - 1, i64::MAX);
        assert!(top.union_is_interval(&TimeInterval::new(i64::MAX, i64::MAX)));
    }

    #[test]
    fn prefix_suffix_windows() {
        let w = TimeInterval::new(2, 7);
        assert_eq!(w.with_end(5), Some(TimeInterval::new(2, 5)));
        assert_eq!(w.with_end(9), Some(TimeInterval::new(2, 7)));
        assert_eq!(w.with_end(1), None);
        assert_eq!(w.with_begin(4), Some(TimeInterval::new(4, 7)));
        assert_eq!(w.with_begin(0), Some(TimeInterval::new(2, 7)));
        assert_eq!(w.with_begin(8), None);
    }
}
