//! Error types for the temporal graph substrate.

use std::fmt;
use std::io;

/// Errors produced while reading, writing or validating temporal graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An underlying I/O error (file missing, permission denied, ...).
    Io(io::Error),
    /// A malformed line in a textual edge-list file.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A vertex id referenced an out-of-range vertex.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// The requested operation needs a non-empty graph or edge set.
    Empty(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            GraphError::Empty(what) => write!(f, "operation requires a non-empty {what}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::VertexOutOfRange { vertex: 9, num_vertices: 4 };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::Empty("graph");
        assert!(e.to_string().contains("non-empty graph"));
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("I/O error"));
    }
}
