//! Canonical edge-set representation of subgraphs.
//!
//! The result of a temporal simple path graph query, and every upper-bound
//! graph, is a subgraph of the input graph that is fully determined by its
//! edge set (the vertex set is induced by the edges — Definition 2). An
//! [`EdgeSet`] stores that edge set in canonical sorted order so that
//! subgraphs coming from different algorithms can be compared for equality,
//! intersected, and measured.

use crate::graph::TemporalGraph;
use crate::types::{TemporalEdge, Timestamp, VertexId};
use std::collections::BTreeSet;
use std::fmt;

/// A set of temporal edges in canonical `(time, src, dst)` order, together
/// with the vertex set they induce.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct EdgeSet {
    edges: Vec<TemporalEdge>,
}

impl EdgeSet {
    /// Creates an empty edge set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an edge set from arbitrary edges (sorted and de-duplicated).
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = TemporalEdge>,
    {
        let mut edges: Vec<TemporalEdge> = edges.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        Self { edges }
    }

    /// The edge set of an entire graph.
    pub fn from_graph(graph: &TemporalGraph) -> Self {
        // Graph edges are already sorted and de-duplicated.
        Self { edges: graph.edges().to_vec() }
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the set contains no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges, sorted by `(time, src, dst)`.
    #[inline]
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Returns `true` if the exact edge is in the set.
    pub fn contains(&self, edge: &TemporalEdge) -> bool {
        self.edges.binary_search(edge).is_ok()
    }

    /// Returns `true` if the edge `e(src, dst, time)` is in the set.
    pub fn contains_edge(&self, src: VertexId, dst: VertexId, time: Timestamp) -> bool {
        self.contains(&TemporalEdge::new(src, dst, time))
    }

    /// The vertices induced by the edges, ascending and de-duplicated.
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut vs: BTreeSet<VertexId> = BTreeSet::new();
        for e in &self.edges {
            vs.insert(e.src);
            vs.insert(e.dst);
        }
        vs.into_iter().collect()
    }

    /// Number of induced vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices().len()
    }

    /// Returns `true` if `vertex` is an endpoint of some edge in the set.
    pub fn contains_vertex(&self, vertex: VertexId) -> bool {
        self.edges.iter().any(|e| e.src == vertex || e.dst == vertex)
    }

    /// Inserts an edge, keeping the canonical order. Returns `true` if the
    /// edge was not already present.
    pub fn insert(&mut self, edge: TemporalEdge) -> bool {
        match self.edges.binary_search(&edge) {
            Ok(_) => false,
            Err(pos) => {
                self.edges.insert(pos, edge);
                true
            }
        }
    }

    /// Returns `true` if every edge of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        self.edges.iter().all(|e| other.contains(e))
    }

    /// Edges present in `self` but not in `other`.
    pub fn difference(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet::from_edges(self.edges.iter().copied().filter(|e| !other.contains(e)))
    }

    /// Edges present in both sets.
    pub fn intersection(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet::from_edges(self.edges.iter().copied().filter(|e| other.contains(e)))
    }

    /// Edges present in either set.
    pub fn union(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet::from_edges(self.edges.iter().chain(other.edges.iter()).copied())
    }

    /// Materialises the edge set as a [`TemporalGraph`] with the given vertex
    /// id space (use the parent graph's `num_vertices` to keep ids stable).
    pub fn to_graph(&self, num_vertices: usize) -> TemporalGraph {
        TemporalGraph::from_edges(num_vertices, self.edges.clone())
    }

    /// Materialises the edge set as a graph over *only* its induced
    /// vertices, renumbered `0..n` in ascending original-id order, and
    /// returns the compact-to-original mapping alongside (original vertex
    /// `mapping[i]` became compact vertex `i`).
    ///
    /// A tspG typically touches a vanishing fraction of the parent graph's
    /// vertices; algorithms whose working state scales with the vertex
    /// count (BFS labels, visited bitmaps) run on the compact graph in
    /// time proportional to the tspG instead of the parent graph. Use
    /// [`EdgeSet::to_graph`] when original ids must stay addressable.
    pub fn to_compact_graph(&self) -> (TemporalGraph, Vec<VertexId>) {
        let mapping = self.vertices();
        let compact = |v: VertexId| -> VertexId {
            mapping.binary_search(&v).expect("vertices() contains every endpoint") as VertexId
        };
        let edges: Vec<TemporalEdge> = self
            .edges
            .iter()
            .map(|e| TemporalEdge::new(compact(e.src), compact(e.dst), e.time))
            .collect();
        (TemporalGraph::from_edges(mapping.len(), edges), mapping)
    }

    /// Rough number of heap bytes used by the stored edges.
    pub fn approx_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<TemporalEdge>()
    }

    /// Ratio `|self| / |other|` of edge counts, the "upper-bound ratio" used
    /// by Table II when `self` is the result tspG and `other` is an
    /// upper-bound graph. Returns 1.0 when `other` is empty.
    pub fn edge_ratio(&self, other: &EdgeSet) -> f64 {
        if other.is_empty() {
            1.0
        } else {
            self.num_edges() as f64 / other.num_edges() as f64
        }
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeSet")
            .field("num_edges", &self.num_edges())
            .field("num_vertices", &self.num_vertices())
            .field("edges", &self.edges)
            .finish()
    }
}

impl FromIterator<TemporalEdge> for EdgeSet {
    fn from_iter<I: IntoIterator<Item = TemporalEdge>>(iter: I) -> Self {
        EdgeSet::from_edges(iter)
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = &'a TemporalEdge;
    type IntoIter = std::slice::Iter<'a, TemporalEdge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeSet {
        EdgeSet::from_edges(vec![
            TemporalEdge::new(0, 2, 2),
            TemporalEdge::new(2, 3, 3),
            TemporalEdge::new(3, 7, 7),
            TemporalEdge::new(2, 7, 6),
        ])
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let es = EdgeSet::from_edges(vec![
            TemporalEdge::new(1, 2, 9),
            TemporalEdge::new(0, 1, 1),
            TemporalEdge::new(1, 2, 9),
        ]);
        assert_eq!(es.num_edges(), 2);
        assert_eq!(es.edges()[0], TemporalEdge::new(0, 1, 1));
    }

    #[test]
    fn membership_and_vertices() {
        let es = sample();
        assert!(es.contains_edge(0, 2, 2));
        assert!(!es.contains_edge(0, 2, 3));
        assert_eq!(es.vertices(), vec![0, 2, 3, 7]);
        assert_eq!(es.num_vertices(), 4);
        assert!(es.contains_vertex(3));
        assert!(!es.contains_vertex(5));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut es = EdgeSet::new();
        assert!(es.insert(TemporalEdge::new(1, 2, 3)));
        assert!(!es.insert(TemporalEdge::new(1, 2, 3)));
        assert_eq!(es.num_edges(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = sample();
        let b = EdgeSet::from_edges(vec![TemporalEdge::new(0, 2, 2), TemporalEdge::new(9, 9, 9)]);
        assert_eq!(a.intersection(&b).num_edges(), 1);
        assert_eq!(a.union(&b).num_edges(), 5);
        assert_eq!(a.difference(&b).num_edges(), 3);
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(a.intersection(&b).is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&a.union(&b)));
    }

    #[test]
    fn graph_roundtrip() {
        let es = sample();
        let g = es.to_graph(8);
        assert_eq!(g.num_edges(), es.num_edges());
        assert_eq!(EdgeSet::from_graph(&g), es);
    }

    #[test]
    fn compact_graph_renumbers_and_roundtrips() {
        let es = sample(); // vertices {0, 2, 3, 7}
        let (g, mapping) = es.to_compact_graph();
        assert_eq!(mapping, vec![0, 2, 3, 7]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), es.num_edges());
        // Mapping the compact edges back through `mapping` recovers the
        // original edge set exactly.
        let restored =
            EdgeSet::from_edges(g.edges().iter().map(|e| {
                TemporalEdge::new(mapping[e.src as usize], mapping[e.dst as usize], e.time)
            }));
        assert_eq!(restored, es);
        // Empty sets compact to the empty graph.
        let (empty, mapping) = EdgeSet::new().to_compact_graph();
        assert_eq!(empty.num_vertices(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn edge_ratio() {
        let tspg = sample();
        let mut ub = tspg.clone();
        ub.insert(TemporalEdge::new(5, 6, 4));
        ub.insert(TemporalEdge::new(5, 6, 5));
        let r = tspg.edge_ratio(&ub);
        assert!((r - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(EdgeSet::new().edge_ratio(&EdgeSet::new()), 1.0);
    }

    #[test]
    fn iteration() {
        let es = sample();
        let count = (&es).into_iter().count();
        assert_eq!(count, es.num_edges());
        let collected: EdgeSet = es.edges().iter().copied().collect();
        assert_eq!(collected, es);
    }
}
