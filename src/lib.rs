//! # tspg-suite
//!
//! Umbrella crate of the temporal simple path graph (tspG) workspace.
//!
//! It re-exports the individual crates under short module names so that the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) can use a single dependency, and so that downstream users who
//! just want "everything" can depend on one crate:
//!
//! * [`graph`] — temporal graph substrate ([`tspg_graph`]).
//! * [`datasets`] — synthetic dataset registry and workloads
//!   ([`tspg_datasets`]).
//! * [`enumeration`] — temporal simple path enumeration ([`tspg_enum`]).
//! * [`baselines`] — `EPdtTSG` / `EPesTSG` / `EPtgTSG` ([`tspg_baselines`]).
//! * [`core`] — the VUG algorithm ([`tspg_core`]).
//! * [`server`] — resident unix-socket server with admission
//!   micro-batching ([`tspg_server`]).
//!
//! The most common entry point is re-exported at the top level:
//!
//! ```
//! use tspg_suite::prelude::*;
//!
//! let g = figure1_graph();
//! let (s, t, w) = figure1_query();
//! let result = generate_tspg(&g, s, t, w);
//! assert_eq!(result.tspg.num_edges(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tspg_baselines as baselines;
pub use tspg_core as core;
pub use tspg_datasets as datasets;
pub use tspg_enum as enumeration;
pub use tspg_graph as graph;
pub use tspg_server as server;

/// Convenient glob import for examples, tests and quick experiments.
pub mod prelude {
    pub use tspg_baselines::{run_ep, EpAlgorithm};
    pub use tspg_core::{
        generate_tspg, generate_tspg_with, ArrivalProfile, BatchStats, CacheConfig, CacheStats,
        PlannerConfig, QueryEngine, QueryScratch, QuerySpec, SourceFrontier, VugConfig, VugReport,
        VugResult,
    };
    pub use tspg_datasets::{
        format_queries, generate_edge_stream, generate_fanout_workload,
        generate_overlapping_workload, generate_repeated_workload, generate_workload,
        generate_workload_batches, parse_queries, registry, DatasetSpec, EdgeStreamConfig,
        FanoutWorkloadConfig, GraphGenerator, OverlappingWorkloadConfig, Query,
        RepeatedWorkloadConfig, Scale, WorkloadError,
    };
    pub use tspg_enum::{count_paths, enumerate_paths, naive_tspg, Budget};
    pub use tspg_graph::fixtures::{figure1_graph, figure1_query};
    pub use tspg_graph::{
        EdgeSet, GraphEpoch, GraphStats, TemporalEdge, TemporalGraph, TemporalGraphBuilder,
        TimeInterval, Timestamp, VertexId,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports_work() {
        use crate::prelude::*;
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        assert_eq!(generate_tspg(&g, s, t, w).tspg.num_edges(), 4);
    }
}
